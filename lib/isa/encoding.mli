(** Binary instruction encoding: 32-bit words, opcode in the top 6 bits.

    [Brr] uses the paper's Figure 5 layout — opcode, a 4-bit frequency
    field, then the branch target offset (22 bits here) — making it the
    same shape as the other direct branches.

    {!illegal_brr_word} provides the Section 3.4/4.1 software-emulation
    encoding: branch-on-random emitted as an {e invalid opcode} carrying
    the frequency, followed by a raw offset word, so an unmodified
    machine traps (SIGILL) and a handler can emulate the instruction. *)

val encode : Instr.t -> (int, string) result
(** Fails when an immediate or offset does not fit its field. *)

val encode_exn : Instr.t -> int

val decode : int -> (Instr.t, string) result
(** Exact inverse of {!encode} on its image. *)

val instr_bytes : int
(** 4: every instruction occupies one word. *)

(** {2 Field widths (for assembler diagnostics and tests)} *)

val imm_bits_alui : int
val imm_bits_mem : int
val offset_bits_branch : int
val offset_bits_jal : int
val offset_bits_brr : int

(** {2 Invalid-opcode emulation form} *)

val offset_bits_illegal_brr : int
(** 18: the word-offset field of the emulation form. *)

val illegal_brr_word : Bor_core.Freq.t -> offset:int -> (int, string) result
(** The trap-causing word, carrying the frequency and an 18-bit word
    offset. (The paper stores the offset in a following 4-byte slot; we
    fold it into one word so native and trap-emulated images have
    identical code layout — noted in DESIGN.md.) *)

val decode_illegal_brr : int -> (Bor_core.Freq.t * int) option
(** Recognise a word produced by {!illegal_brr_word}, returning the
    frequency and word offset. *)
