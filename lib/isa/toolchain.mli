(** Shared front-door helpers for drivers that consume BRISC inputs —
    reading a file and turning assembly source or a BOR1 object image
    into a loaded {!Program.t}. Factored out of [bor] and the bench
    runner, which had drifted their own copies. *)

val read_file : string -> string
(** Whole file, binary-safe. The channel is closed even on error.
    @raise Sys_error when the file cannot be opened or read. *)

val load_program : string -> (Program.t, string) result
(** [load_program contents] accepts either a BOR1 object image
    (detected by magic, see {!Objfile.is_object_file}) or assembly
    source; errors are rendered ready to print. *)

val load_program_file : string -> (Program.t, string) result
(** {!read_file} composed with {!load_program}; [Sys_error] becomes
    [Error] with the message, other errors are prefixed with the
    path. *)
