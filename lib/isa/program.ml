type t = {
  text : Instr.t array;
  text_base : int;
  data : Bytes.t;
  data_base : int;
  entry : int;
  symbols : (string * int) list;
  sites : (int * int) list;
}

let default_text_base = 0x1000
let default_data_base = 0x100000

let make ?(text_base = default_text_base) ?(data_base = default_data_base)
    ?entry ?(symbols = []) ?(sites = []) ?(data = Bytes.create 0) text =
  let entry = match entry with Some e -> e | None -> text_base in
  { text; text_base; data; data_base; entry; symbols; sites }

let instr_at t addr =
  let off = addr - t.text_base in
  if off < 0 || off land 3 <> 0 then None
  else
    let idx = off lsr 2 in
    if idx >= Array.length t.text then None else Some t.text.(idx)

let text_end t = t.text_base + (4 * Array.length t.text)
let find_symbol t name = List.assoc_opt name t.symbols
let site_at t addr = List.assoc_opt addr t.sites
let instr_count t = Array.length t.text

let pp_listing ppf t =
  let by_addr = List.map (fun (n, a) -> (a, n)) t.symbols in
  Array.iteri
    (fun i ins ->
      let addr = t.text_base + (4 * i) in
      List.iter
        (fun (a, n) -> if a = addr then Format.fprintf ppf "%s:@." n)
        by_addr;
      let site =
        match site_at t addr with
        | Some id -> Printf.sprintf "   ; site %d" id
        | None -> ""
      in
      Format.fprintf ppf "  0x%05x  %a%s@." addr Instr.pp ins site)
    t.text
