type t = int

let count = 32

let of_int i =
  if i < 0 || i >= count then invalid_arg "Reg.of_int: need 0..31";
  i

let to_int r = r
let zero = 0
let ra = 1
let sp = 2
let gp = 3

let a i =
  if i < 0 || i > 3 then invalid_arg "Reg.a: need 0..3";
  4 + i

let t_ i =
  if i < 0 || i > 7 then invalid_arg "Reg.t_: need 0..7";
  8 + i

let s i =
  if i < 0 || i > 7 then invalid_arg "Reg.s: need 0..7";
  16 + i

let x i =
  if i < 24 || i > 31 then invalid_arg "Reg.x: need 24..31";
  i

let name r =
  match r with
  | 0 -> "zero"
  | 1 -> "ra"
  | 2 -> "sp"
  | 3 -> "gp"
  | _ when r <= 7 -> Printf.sprintf "a%d" (r - 4)
  | _ when r <= 15 -> Printf.sprintf "t%d" (r - 8)
  | _ when r <= 23 -> Printf.sprintf "s%d" (r - 16)
  | _ -> Printf.sprintf "x%d" r

let of_name s =
  let num prefix base lo hi =
    let l = String.length prefix in
    if String.length s > l && String.sub s 0 l = prefix then
      match int_of_string_opt (String.sub s l (String.length s - l)) with
      | Some i when i >= lo && i <= hi -> Some (base + i - lo)
      | Some _ | None -> None
    else None
  in
  match s with
  | "zero" -> Some 0
  | "ra" -> Some 1
  | "sp" -> Some 2
  | "gp" -> Some 3
  | _ -> (
    match num "a" 4 0 3 with
    | Some r -> Some r
    | None -> (
      match num "t" 8 0 7 with
      | Some r -> Some r
      | None -> (
        match num "s" 16 0 7 with
        | Some r -> Some r
        | None -> (
          match num "x" 24 24 31 with
          | Some r -> Some r
          | None -> num "r" 0 0 31))))

let caller_saved = List.init 8 (fun i -> 8 + i) @ List.init 8 (fun i -> 24 + i)
let callee_saved = List.init 8 (fun i -> 16 + i)
let equal = Int.equal
let compare = Int.compare
let pp ppf r = Format.pp_print_string ppf (name r)
