type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Err of error

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Err { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Line splitting and tokenisation                                     *)

let strip_comment line =
  let buf = Buffer.create (String.length line) in
  let in_string = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then in_string := not !in_string;
         if c = ';' && not !in_string then raise Exit;
         Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let is_space c = c = ' ' || c = '\t' || c = '\r'

let trim = String.trim

(* Split an operand field on top-level commas (commas inside quotes or
   parentheses do not split). *)
let split_operands s =
  let parts = ref [] and buf = Buffer.create 16 in
  let depth = ref 0 and in_string = ref false and in_char = ref false in
  let flush () =
    let p = trim (Buffer.contents buf) in
    Buffer.clear buf;
    if p <> "" then parts := p :: !parts
  in
  String.iter
    (fun c ->
      match c with
      | '"' when not !in_char ->
        in_string := not !in_string;
        Buffer.add_char buf c
      | '\'' when not !in_string ->
        in_char := not !in_char;
        Buffer.add_char buf c
      | '(' when not (!in_string || !in_char) ->
        incr depth;
        Buffer.add_char buf c
      | ')' when not (!in_string || !in_char) ->
        decr depth;
        Buffer.add_char buf c
      | ',' when (not (!in_string || !in_char)) && !depth = 0 -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !parts

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)

let char_escape line = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c -> fail line "unknown escape '\\%c'" c

let parse_char line s =
  (* s includes the surrounding quotes *)
  match String.length s with
  | 3 when s.[0] = '\'' && s.[2] = '\'' -> Char.code s.[1]
  | 4 when s.[0] = '\'' && s.[1] = '\\' && s.[3] = '\'' ->
    Char.code (char_escape line s.[2])
  | _ -> fail line "malformed character literal %s" s

let parse_int_opt line s =
  if s = "" then None
  else if s.[0] = '\'' then Some (parse_char line s)
  else
    match int_of_string_opt s with
    | Some v -> Some v
    | None -> None

let parse_string line s =
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then
    fail line "malformed string literal";
  let buf = Buffer.create n in
  let i = ref 1 in
  while !i < n - 1 do
    (if s.[!i] = '\\' && !i + 1 < n - 1 then begin
       Buffer.add_char buf (char_escape line s.[!i + 1]);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Operands                                                            *)

type operand =
  | Oreg of Reg.t
  | Oimm of int
  | Omem of int * Reg.t
  | Omem_sym of string * int * Reg.t  (** sym+off(reg) *)
  | Ofreq of Bor_core.Freq.t
  | Osym of string

let parse_operand line s =
  match Reg.of_name s with
  | Some r -> Oreg r
  | None -> (
    match parse_int_opt line s with
    | Some v -> Oimm v
    | None ->
      if s.[0] = '#' then
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some f when f >= 0 && f <= 15 -> Ofreq (Bor_core.Freq.of_field f)
        | Some _ | None -> fail line "bad raw frequency %s (need #0..#15)" s
      else if String.contains s '/' then begin
        match String.split_on_char '/' s with
        | [ "1"; den ] -> (
          match int_of_string_opt den with
          | Some d -> (
            try Ofreq (Bor_core.Freq.of_period d)
            with Invalid_argument _ ->
              fail line "frequency %s: denominator must be 2^k, k in 1..16" s)
          | None -> fail line "bad frequency %s" s)
        | _ -> fail line "bad frequency %s (expected 1/2^k)" s
      end
      else if String.contains s '(' then begin
        (* off(reg) *)
        let open_p = String.index s '(' in
        let close_p =
          try String.index s ')'
          with Not_found -> fail line "missing ')' in %s" s
        in
        let off_str = trim (String.sub s 0 open_p) in
        let reg_str = trim (String.sub s (open_p + 1) (close_p - open_p - 1)) in
        let base =
          match Reg.of_name reg_str with
          | Some r -> r
          | None -> fail line "bad base register %s" reg_str
        in
        if off_str = "" then Omem (0, base)
        else
          match parse_int_opt line off_str with
          | Some v -> Omem (v, base)
          | None ->
            (* Symbolic displacement: sym or sym+int / sym-int. *)
            let sym, extra =
              match String.index_opt off_str '+' with
              | Some i ->
                ( String.sub off_str 0 i,
                  String.sub off_str (i + 1) (String.length off_str - i - 1)
                )
              | None -> (
                match String.index_opt off_str '-' with
                | Some i when i > 0 ->
                  ( String.sub off_str 0 i,
                    String.sub off_str i (String.length off_str - i) )
                | Some _ | None -> (off_str, "0"))
            in
            let sym = trim sym and extra = trim extra in
            if sym = "" || not (is_ident_start sym.[0]) then
              fail line "bad offset %s" off_str;
            let extra =
              match int_of_string_opt extra with
              | Some v -> v
              | None -> fail line "bad offset %s" off_str
            in
            Omem_sym (sym, extra, base)
      end
      else if is_ident_start s.[0] then Osym s
      else fail line "cannot parse operand %s" s)

(* ------------------------------------------------------------------ *)
(* Statements (post pseudo-expansion instruction templates)            *)

type tmpl =
  | Fixed of Instr.t
  | Branch_to of Instr.cond * Reg.t * Reg.t * string
  | Jal_to of Reg.t * string
  | Brr_to of Bor_core.Freq.t * string
  | Brra_to of string
  | Lui_hi of Reg.t * string
  | Addi_lo of Reg.t * Reg.t * string
  | Mem_sym of Instr.width * bool * Reg.t * Reg.t * string * int
      (** load?, data reg, base reg (gp), symbol, extra offset: the
          gp-relative small-data form [lw rd, sym+off(gp)] *)

type data_item =
  | Dword of int
  | Dword_sym of string
  | Dbyte of int
  | Dspace of int
  | Dascii of string
  | Dalign of int

type section = Text | Data

type st = {
  mutable section : section;
  mutable text : (int * tmpl) list; (* line, template; reversed *)
  mutable text_words : int;
  mutable data : (int * data_item) list; (* reversed *)
  mutable data_bytes : int;
  mutable labels : (string * int) list; (* name -> address *)
  mutable sites : (int * int) list;
  text_base : int;
  data_base : int;
}

let here st =
  match st.section with
  | Text -> st.text_base + (4 * st.text_words)
  | Data -> st.data_base + st.data_bytes

let define_label st line name =
  if List.mem_assoc name st.labels then fail line "duplicate label %s" name;
  st.labels <- (name, here st) :: st.labels

let emit st line tmpl =
  if st.section <> Text then fail line "instruction outside .text";
  st.text <- (line, tmpl) :: st.text;
  st.text_words <- st.text_words + 1

let emit_data st line item =
  if st.section <> Data then fail line "data directive outside .data";
  let size = function
    | Dword _ | Dword_sym _ -> 4
    | Dbyte _ -> 1
    | Dspace n -> n
    | Dascii s -> String.length s
    | Dalign a ->
      let rem = st.data_bytes mod a in
      if rem = 0 then 0 else a - rem
  in
  st.data <- (line, item) :: st.data;
  st.data_bytes <- st.data_bytes + size item

(* hi/lo split with the usual rounding so the low part is signed 12. *)
let hi_lo v =
  let v = Bor_util.Bits.to_u32 v in
  let hi = (v + 0x800) lsr 12 land 0xFFFFF in
  let lo = Bor_util.Bits.sign_extend (v land 0xFFF) ~width:12 in
  (hi, lo)

(* ------------------------------------------------------------------ *)
(* Mnemonics                                                           *)

let alu_of_mnemonic = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "sll" -> Some Instr.Sll
  | "srl" -> Some Instr.Srl
  | "sra" -> Some Instr.Sra
  | "slt" -> Some Instr.Slt
  | "sltu" -> Some Instr.Sltu
  | "mul" -> Some Instr.Mul
  | _ -> None

let alui_of_mnemonic = function
  | "addi" -> Some Instr.Add
  | "subi" -> Some Instr.Sub
  | "andi" -> Some Instr.And
  | "ori" -> Some Instr.Or
  | "xori" -> Some Instr.Xor
  | "slli" -> Some Instr.Sll
  | "srli" -> Some Instr.Srl
  | "srai" -> Some Instr.Sra
  | "slti" -> Some Instr.Slt
  (* both spellings: RISC-V writes [sltiu], [Instr.pp] emits [sltui] *)
  | "sltiu" | "sltui" -> Some Instr.Sltu
  | "muli" -> Some Instr.Mul
  | _ -> None

let cond_of_mnemonic = function
  | "beq" -> Some Instr.Eq
  | "bne" -> Some Instr.Ne
  | "blt" -> Some Instr.Lt
  | "bge" -> Some Instr.Ge
  | "bltu" -> Some Instr.Ltu
  | "bgeu" -> Some Instr.Geu
  | _ -> None

let expect_reg line = function
  | Oreg r -> r
  | _ -> fail line "expected a register"

let expect_imm line = function
  | Oimm v -> v
  | _ -> fail line "expected an immediate"

let expect_sym line = function
  | Osym s -> s
  | _ -> fail line "expected a label"

let expect_freq line = function
  | Ofreq f -> f
  | _ -> fail line "expected a frequency (1/2^k or #field)"

let instruction st line m ops =
  let arity n =
    if List.length ops <> n then
      fail line "%s expects %d operand(s), got %d" m n (List.length ops)
  in
  let op i = List.nth ops i in
  match (alu_of_mnemonic m, alui_of_mnemonic m, cond_of_mnemonic m) with
  | Some aop, _, _ ->
    arity 3;
    emit st line
      (Fixed
         (Instr.Alu
            (aop, expect_reg line (op 0), expect_reg line (op 1),
             expect_reg line (op 2))))
  | None, Some aop, _ ->
    arity 3;
    emit st line
      (Fixed
         (Instr.Alui
            (aop, expect_reg line (op 0), expect_reg line (op 1),
             expect_imm line (op 2))))
  | None, None, Some c ->
    arity 3;
    emit st line
      (Branch_to
         (c, expect_reg line (op 0), expect_reg line (op 1),
          expect_sym line (op 2)))
  | None, None, None -> (
    match m with
    | "lui" ->
      arity 2;
      emit st line (Fixed (Instr.Lui (expect_reg line (op 0), expect_imm line (op 1))))
    | "lw" | "lb" | "sw" | "sb" ->
      arity 2;
      let data = expect_reg line (op 0) in
      let w = if m.[1] = 'w' then Instr.Word else Instr.Byte in
      let load = m.[0] = 'l' in
      (match op 1 with
      | Omem (off, rb) ->
        if load then emit st line (Fixed (Instr.Load (w, data, rb, off)))
        else emit st line (Fixed (Instr.Store (w, data, rb, off)))
      | Omem_sym (sym, extra, rb) ->
        if not (Reg.equal rb Reg.gp) then
          fail line "symbolic displacement requires the gp base register";
        emit st line (Mem_sym (w, load, data, rb, sym, extra))
      | Oreg _ | Oimm _ | Ofreq _ | Osym _ ->
        fail line "expected off(reg)")
    | "jal" -> (
      match ops with
      | [ Osym s ] -> emit st line (Jal_to (Reg.ra, s))
      | [ Oreg rd; Osym s ] -> emit st line (Jal_to (rd, s))
      | _ -> fail line "jal expects [rd,] label")
    | "jalr" -> (
      match ops with
      | [ Oreg rs1 ] -> emit st line (Fixed (Instr.Jalr (Reg.zero, rs1, 0)))
      | [ Oreg rd; Oreg rs1; Oimm imm ] ->
        emit st line (Fixed (Instr.Jalr (rd, rs1, imm)))
      | _ -> fail line "jalr expects rs1 | rd, rs1, imm")
    | "brr" ->
      arity 2;
      emit st line (Brr_to (expect_freq line (op 0), expect_sym line (op 1)))
    | "brra" ->
      arity 1;
      emit st line (Brra_to (expect_sym line (op 0)))
    | "rdlfsr" ->
      arity 1;
      emit st line (Fixed (Instr.Rdlfsr (expect_reg line (op 0))))
    | "marker" ->
      arity 1;
      emit st line (Fixed (Instr.Marker (expect_imm line (op 0))))
    | "halt" ->
      arity 0;
      emit st line (Fixed Instr.Halt)
    | "nop" ->
      arity 0;
      emit st line (Fixed Instr.Nop)
    (* Pseudo-instructions *)
    | "j" ->
      arity 1;
      emit st line (Jal_to (Reg.zero, expect_sym line (op 0)))
    | "call" ->
      arity 1;
      emit st line (Jal_to (Reg.ra, expect_sym line (op 0)))
    | "ret" ->
      arity 0;
      emit st line (Fixed (Instr.Jalr (Reg.zero, Reg.ra, 0)))
    | "mv" ->
      arity 2;
      emit st line
        (Fixed
           (Instr.Alui (Instr.Add, expect_reg line (op 0),
              expect_reg line (op 1), 0)))
    | "not" ->
      arity 2;
      emit st line
        (Fixed
           (Instr.Alui (Instr.Xor, expect_reg line (op 0),
              expect_reg line (op 1), -1)))
    | "neg" ->
      arity 2;
      emit st line
        (Fixed
           (Instr.Alu (Instr.Sub, expect_reg line (op 0), Reg.zero,
              expect_reg line (op 1))))
    | "li" ->
      arity 2;
      let rd = expect_reg line (op 0) and v = expect_imm line (op 1) in
      if Bor_util.Bits.fits_signed v ~width:12 then
        emit st line (Fixed (Instr.Alui (Instr.Add, rd, Reg.zero, v)))
      else begin
        let hi, lo = hi_lo v in
        emit st line (Fixed (Instr.Lui (rd, hi)));
        if lo <> 0 then
          emit st line (Fixed (Instr.Alui (Instr.Add, rd, rd, lo)))
      end
    | "la" ->
      arity 2;
      let rd = expect_reg line (op 0) and s = expect_sym line (op 1) in
      emit st line (Lui_hi (rd, s));
      emit st line (Addi_lo (rd, rd, s))
    | "bgt" | "ble" | "bgtu" | "bleu" ->
      arity 3;
      (* Swapped-operand conveniences: bgt a,b = blt b,a etc. *)
      let c =
        match m with
        | "bgt" -> Instr.Lt
        | "ble" -> Instr.Ge
        | "bgtu" -> Instr.Ltu
        | _ -> Instr.Geu
      in
      emit st line
        (Branch_to (c, expect_reg line (op 1), expect_reg line (op 0),
           expect_sym line (op 2)))
    | "beqz" ->
      arity 2;
      emit st line
        (Branch_to (Instr.Eq, expect_reg line (op 0), Reg.zero,
           expect_sym line (op 1)))
    | "bnez" ->
      arity 2;
      emit st line
        (Branch_to (Instr.Ne, expect_reg line (op 0), Reg.zero,
           expect_sym line (op 1)))
    | _ -> fail line "unknown mnemonic %s" m)

let directive st line d ops raw_field =
  match d with
  | ".text" -> st.section <- Text
  | ".data" -> st.section <- Data
  | ".globl" | ".global" -> () (* accepted, unused *)
  | ".word" ->
    List.iter
      (fun o ->
        match o with
        | Oimm v -> emit_data st line (Dword v)
        | Osym s -> emit_data st line (Dword_sym s)
        | _ -> fail line ".word expects integers or symbols")
      ops
  | ".byte" ->
    List.iter
      (fun o -> emit_data st line (Dbyte (expect_imm line o)))
      ops
  | ".space" ->
    let n = expect_imm line (List.hd ops) in
    if n < 0 then fail line ".space expects a non-negative size";
    emit_data st line (Dspace n)
  | ".align" ->
    let a = expect_imm line (List.hd ops) in
    if a <= 0 then fail line ".align expects a positive alignment";
    emit_data st line (Dalign a)
  | ".ascii" -> emit_data st line (Dascii (parse_string line (trim raw_field)))
  | "site" ->
    if st.section <> Text then fail line "site directive outside .text";
    let id = expect_imm line (List.hd ops) in
    st.sites <- (here st, id) :: st.sites
  | _ -> fail line "unknown directive %s" d

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let parse_line st lineno raw =
  let s = trim (strip_comment raw) in
  if s = "" then ()
  else begin
    (* optional leading label *)
    let s =
      match String.index_opt s ':' with
      | Some i
        when String.for_all
               (fun c -> (not (is_space c)) && c <> '"' && c <> '\'')
               (String.sub s 0 i) ->
        define_label st lineno (String.sub s 0 i);
        trim (String.sub s (i + 1) (String.length s - i - 1))
      | _ -> s
    in
    if s = "" then ()
    else begin
      let mnem, rest =
        match String.index_opt s ' ' with
        | None -> (
          match String.index_opt s '\t' with
          | None -> (s, "")
          | Some i ->
            (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1)))
        | Some i ->
          (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      in
      let mnem = String.lowercase_ascii mnem in
      if mnem = ".ascii" then directive st lineno mnem [] rest
      else
        let ops = List.map (parse_operand lineno) (split_operands rest) in
        if mnem.[0] = '.' || mnem = "site" then
          directive st lineno mnem ops rest
        else instruction st lineno mnem ops
    end
  end

let resolve st =
  let lookup line name =
    match List.assoc_opt name st.labels with
    | Some a -> a
    | None -> fail line "undefined symbol %s" name
  in
  let text = Array.make st.text_words Instr.Nop in
  let items = List.rev st.text in
  List.iteri
    (fun idx (line, tmpl) ->
      let addr = st.text_base + (4 * idx) in
      let rel name =
        let target = lookup line name in
        let delta = target - addr in
        if delta land 3 <> 0 then fail line "misaligned branch target %s" name;
        delta asr 2
      in
      let ins =
        match tmpl with
        | Fixed i -> i
        | Branch_to (c, r1, r2, s) -> Instr.Branch (c, r1, r2, rel s)
        | Jal_to (rd, s) -> Instr.Jal (rd, rel s)
        | Brr_to (f, s) -> Instr.Brr (f, rel s)
        | Brra_to s -> Instr.Brr_always (rel s)
        | Lui_hi (rd, s) -> Instr.Lui (rd, fst (hi_lo (lookup line s)))
        | Addi_lo (rd, rs, s) ->
          Instr.Alui (Instr.Add, rd, rs, snd (hi_lo (lookup line s)))
        | Mem_sym (w, load, data, base, sym, extra) ->
          let off = lookup line sym - st.data_base + extra in
          if load then Instr.Load (w, data, base, off)
          else Instr.Store (w, data, base, off)
      in
      (* Validate field widths now for a located error message. *)
      (match Encoding.encode ins with
      | Ok _ -> ()
      | Error e -> fail line "%s" e);
      text.(idx) <- ins)
    items;
  let data = Bytes.make st.data_bytes '\000' in
  let cursor = ref 0 in
  let put_word line v =
    if !cursor + 4 > st.data_bytes then fail line "data overflow";
    Bytes.set_int32_le data !cursor (Int32.of_int v);
    cursor := !cursor + 4
  in
  List.iter
    (fun (line, item) ->
      match item with
      | Dword v -> put_word line v
      | Dword_sym s -> put_word line (lookup line s)
      | Dbyte v ->
        Bytes.set data !cursor (Char.chr (v land 0xFF));
        incr cursor
      | Dspace n -> cursor := !cursor + n
      | Dascii s ->
        Bytes.blit_string s 0 data !cursor (String.length s);
        cursor := !cursor + String.length s
      | Dalign a ->
        let rem = !cursor mod a in
        if rem <> 0 then cursor := !cursor + (a - rem))
    (List.rev st.data);
  let entry =
    match List.assoc_opt "main" st.labels with
    | Some a -> a
    | None -> st.text_base
  in
  Program.make ~text_base:st.text_base ~data_base:st.data_base ~entry
    ~symbols:st.labels ~sites:st.sites ~data text

let assemble ?(text_base = Program.default_text_base)
    ?(data_base = Program.default_data_base) source =
  let st =
    {
      section = Text;
      text = [];
      text_words = 0;
      data = [];
      data_bytes = 0;
      labels = [];
      sites = [];
      text_base;
      data_base;
    }
  in
  try
    List.iteri
      (fun i raw -> parse_line st (i + 1) raw)
      (String.split_on_char '\n' source);
    Ok (resolve st)
  with Err e -> Error e

let assemble_exn ?text_base ?data_base source =
  match assemble ?text_base ?data_base source with
  | Ok p -> p
  | Error e -> failwith (Format.asprintf "assembly failed: %a" pp_error e)
