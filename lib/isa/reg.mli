(** Architectural registers of BRISC, the 32-register RISC target used
    throughout the reproduction.

    ABI convention (used by the minic compiler and the assembler's
    symbolic names):
    - [r0]/[zero]: hard-wired zero
    - [r1]/[ra]: return address
    - [r2]/[sp]: stack pointer
    - [r3]/[gp]: global pointer (base of the data segment)
    - [r4..r7]/[a0..a3]: arguments / return value in [a0]
    - [r8..r15]/[t0..t7]: caller-saved temporaries
    - [r16..r23]/[s0..s7]: callee-saved
    - [r24..r31]/[x24..x31]: additional temporaries (caller-saved) *)

type t = private int

val count : int
val of_int : int -> t
val to_int : t -> int
val zero : t
val ra : t
val sp : t
val gp : t
val a : int -> t (** [a i] for [i] in [0, 3] *)

val t_ : int -> t (** [t_ i] for [i] in [0, 7] *)

val s : int -> t (** [s i] for [i] in [0, 7] *)

val x : int -> t (** [x i] for [i] in [24, 31] *)

val name : t -> string
val of_name : string -> t option
(** Accepts both ABI names and raw [rN] spellings. *)

val caller_saved : t list
val callee_saved : t list
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
