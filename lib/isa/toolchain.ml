let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program contents =
  if Objfile.is_object_file contents then Objfile.load contents
  else
    match Asm.assemble contents with
    | Ok p -> Ok p
    | Error e -> Error (Format.asprintf "%a" Asm.pp_error e)

let load_program_file path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match load_program contents with
    | Ok p -> Ok p
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
