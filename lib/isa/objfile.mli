(** A simple binary object format for linked BRISC images, so programs
    can be assembled once and shipped to the simulators (magic
    ["BOR1"]). The text section stores the binary instruction encodings
    of {!Encoding}; symbols and the instrumentation site table travel
    with the image. *)

val magic : string

val save : Program.t -> string
(** Serialise to bytes.
    @raise Invalid_argument if an instruction cannot be encoded (the
    assembler already guarantees it can). *)

val load : string -> (Program.t, string) result
(** Parse an image produced by {!save}; checks the magic, bounds and
    instruction decodings. *)

val write_file : string -> Program.t -> unit
val read_file : string -> (Program.t, string) result

val is_object_file : string -> bool
(** True when the string (or file contents) begins with {!magic}. *)
