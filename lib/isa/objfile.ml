let magic = "BOR1"

let u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let save (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  u32 buf p.text_base;
  u32 buf p.data_base;
  u32 buf p.entry;
  u32 buf (Array.length p.text);
  Array.iter (fun i -> u32 buf (Encoding.encode_exn i)) p.text;
  u32 buf (Bytes.length p.data);
  Buffer.add_bytes buf p.data;
  u32 buf (List.length p.symbols);
  List.iter
    (fun (name, addr) ->
      u32 buf (String.length name);
      Buffer.add_string buf name;
      u32 buf addr)
    p.symbols;
  u32 buf (List.length p.sites);
  List.iter
    (fun (addr, id) ->
      u32 buf addr;
      u32 buf id)
    p.sites;
  Buffer.contents buf

exception Bad of string

let load s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then
      raise (Bad (Printf.sprintf "truncated image reading %s" what))
  in
  let read_u32 what =
    need 4 what;
    let b i = Char.code s.[!pos + i] in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    pos := !pos + 4;
    v
  in
  let read_string n what =
    need n what;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  try
    if read_string 4 "magic" <> magic then raise (Bad "bad magic");
    let text_base = read_u32 "text base" in
    let data_base = read_u32 "data base" in
    let entry = read_u32 "entry" in
    let n_text = read_u32 "text size" in
    if n_text < 0 || n_text > 16 * 1024 * 1024 then
      raise (Bad "unreasonable text size");
    let text =
      Array.init n_text (fun i ->
          match Encoding.decode (read_u32 "instruction") with
          | Ok instr -> instr
          | Error e -> raise (Bad (Printf.sprintf "word %d: %s" i e)))
    in
    let data_len = read_u32 "data size" in
    let data = Bytes.of_string (read_string data_len "data") in
    let n_sym = read_u32 "symbol count" in
    let symbols =
      List.init n_sym (fun _ ->
          let len = read_u32 "symbol name length" in
          let name = read_string len "symbol name" in
          (name, read_u32 "symbol address"))
    in
    let n_sites = read_u32 "site count" in
    let sites =
      List.init n_sites (fun _ ->
          let addr = read_u32 "site address" in
          (addr, read_u32 "site id"))
    in
    if !pos <> String.length s then raise (Bad "trailing bytes");
    Ok
      (Program.make ~text_base ~data_base ~entry ~symbols ~sites ~data text)
  with Bad m -> Error m

let write_file path p =
  let oc = open_out_bin path in
  output_string oc (save p);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  load s

let is_object_file s =
  String.length s >= 4 && String.sub s 0 4 = magic
