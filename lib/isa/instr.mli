(** BRISC instructions.

    The interesting citizen is [Brr (f, off)] — branch-on-random — a
    direct branch that is taken with probability [(1/2)^(field f + 1)]
    rather than under a register condition (paper Figure 5). Like other
    direct branches its target is [pc + 4*off]. [Brr_always] is the
    100%-taken variant of the paper's footnote 4, used for the jump back
    from out-of-line instrumentation without disturbing the BTB.

    Branch/jump offsets are in {e instruction words relative to the
    instruction itself}; an offset of 1 is the fall-through successor. *)

type alu_op =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt
  | Sltu
  | Mul

type cond = Eq | Ne | Lt | Ge | Ltu | Geu

type width = Byte | Word

type t =
  | Alu of alu_op * Reg.t * Reg.t * Reg.t  (** [op rd, rs1, rs2] *)
  | Alui of alu_op * Reg.t * Reg.t * int  (** [op rd, rs1, imm12] *)
  | Lui of Reg.t * int  (** [lui rd, imm20]: rd := imm << 12 *)
  | Load of width * Reg.t * Reg.t * int  (** [lw rd, off(rs1)] *)
  | Store of width * Reg.t * Reg.t * int  (** [sw rsrc, off(rbase)] *)
  | Branch of cond * Reg.t * Reg.t * int  (** [b<c> rs1, rs2, off] *)
  | Jal of Reg.t * int  (** [jal rd, off]: rd := pc+4; pc += 4*off *)
  | Jalr of Reg.t * Reg.t * int  (** [jalr rd, rs1, imm] *)
  | Brr of Bor_core.Freq.t * int  (** branch-on-random *)
  | Brr_always of int  (** 100%-taken branch-on-random *)
  | Rdlfsr of Reg.t  (** read the LFSR into [rd] (§3.4 extension) *)
  | Marker of int  (** magic marker for region-of-interest control *)
  | Halt
  | Nop

val equal : t -> t -> bool

(** {2 Classification, shared by both simulators} *)

type control =
  | Not_control
  | Cond_branch  (** resolved in the back end *)
  | Front_end_branch  (** brr / brr_always / jal: resolved at decode *)
  | Indirect  (** jalr: needs a register, resolved in the back end *)

val control : t -> control

val is_brr : t -> bool
(** [Brr] or [Brr_always]. *)

val dest : t -> Reg.t option
(** Destination register, if any ([zero] destinations are reported as
    [None]: writes to [zero] are discarded). *)

val sources : t -> Reg.t list
(** Register operands read (without [zero]). *)

val is_load : t -> bool
val is_store : t -> bool

val branch_offset : t -> int option
(** Static target offset (in words) for direct control flow. *)

val eval_cond : cond -> int -> int -> bool
(** [eval_cond c a b] with 32-bit signed [a], [b]; unsigned conditions
    reinterpret the operands. *)

val eval_alu : alu_op -> int -> int -> int
(** 32-bit wrapped ALU semantics; shifts use the low 5 bits of the
    second operand. *)

val pp : Format.formatter -> t -> unit
(** Assembly syntax, e.g. "brr 1/1024, 12". *)

val to_string : t -> string
