module Prng = Bor_util.Prng
module Program = Bor_isa.Program
module Reg = Bor_isa.Reg
module Machine = Bor_sim.Machine
module Memory = Bor_sim.Memory
module Backend = Bor_exec.Backend

type oracle = Detailed | Sampled of Bor_uarch.Sampling_plan.t

(* One test input: register overrides (index above gp only — zero, ra,
   sp and gp keep their loader values so stacks and data addressing
   stay sane) plus a full data-segment image. Vector 0 is the clean
   state: no overrides, the program's own data segment. *)
type vector = { v_regs : (int * int) list; v_data : Bytes.t option }

(* Complete architectural result of one halted run. *)
type snapshot = { s_regs : int array; s_data : Bytes.t }

type t = {
  c_vectors : vector array;
  c_expected : snapshot array;
  c_cycles : int;
  c_len : int;
  c_data_len : int;
  c_max_steps : int;
  c_max_cycles : int;
  c_oracle : oracle;
}

let unit_cap = 64
let infinite_cost = max_int / 2

let make_vectors ~count ~seed ~data_len =
  let rng = Prng.create ~seed in
  Array.init count (fun i ->
      if i = 0 then { v_regs = []; v_data = None }
      else begin
        let regs =
          List.init
            (Reg.count - (Reg.to_int Reg.gp + 1))
            (fun k ->
              let r = Reg.to_int Reg.gp + 1 + k in
              (* Mix small values (shift amounts, masks, loop bounds)
                 with full-width ones. *)
              let v =
                if Prng.int rng 4 = 0 then Prng.int rng 16
                else Prng.next rng land 0xffffffff
              in
              (r, v))
        in
        let data = Bytes.init data_len (fun _ -> Char.chr (Prng.int rng 256)) in
        { v_regs = regs; v_data = Some data }
      end)

(* Run [prog] from one vector on the functional simulator; [None] when
   it faults, trips the sanitizer or exhausts the step budget. *)
let run_vector ~max_steps ~data_len prog vec =
  let m = Machine.create prog in
  List.iter (fun (r, v) -> Machine.set_reg m (Reg.of_int r) v) vec.v_regs;
  (match vec.v_data with
  | None -> ()
  | Some d ->
    let mem = Machine.memory m in
    let base = prog.Program.data_base in
    for i = 0 to Bytes.length d - 1 do
      Memory.write_byte mem (base + i) (Char.code (Bytes.get d i))
    done);
  match Machine.run ~max_steps m with
  | exception Bor_check.Check.Violation _ -> None
  | Error _ -> None
  | Ok _ ->
    let regs = Array.copy (Machine.unsafe_regs m) in
    let mem = Machine.memory m in
    let base = prog.Program.data_base in
    let data =
      Bytes.init data_len (fun i -> Char.chr (Memory.read_byte mem (base + i)))
    in
    Some { s_regs = regs; s_data = data }

(* State-difference units between a candidate run and the expected
   snapshot, capped so one thoroughly wrong vector cannot dwarf the
   whole mismatch scale. *)
let units expected got =
  let d = ref 0 in
  Array.iteri
    (fun i v -> if got.s_regs.(i) <> v then incr d)
    expected.s_regs;
  let n = Bytes.length expected.s_data in
  let i = ref 0 in
  while !d < unit_cap && !i < n do
    if Bytes.get got.s_data !i <> Bytes.get expected.s_data !i then incr d;
    incr i
  done;
  min !d unit_cap

(* The pipeline's [cycles] stat is gated by region-of-interest markers
   ([Marker 1] resets it, [Marker 2] freezes it). A superoptimizer
   paid in ROI cycles would learn to shrink the *measured region*
   instead of the program — reorder the markers, or hoist work in
   front of the ROI one equivalence-preserving move at a time — so the
   oracle neutralizes markers to [Nop] (their architectural effect)
   and always charges whole-program cycles. *)
let defuse_markers prog =
  if
    Array.exists
      (function Bor_isa.Instr.Marker _ -> true | _ -> false)
      prog.Program.text
  then
    {
      prog with
      Program.text =
        Array.map
          (function Bor_isa.Instr.Marker _ -> Bor_isa.Instr.Nop | i -> i)
          prog.Program.text;
    }
  else prog

let oracle_cycles ~max_cycles o prog =
  let prog = defuse_markers prog in
  match o with
  | Detailed -> (
    let b = Backend.detailed ~max_cycles prog in
    match b.Backend.run () with
    | Ok (Backend.Detailed st) -> Some st.Bor_uarch.Pipeline.cycles
    | Ok _ | Error _ -> None)
  | Sampled plan -> (
    let b = Backend.sampled ~plan ~max_cycles prog in
    match b.Backend.run () with
    | Ok (Backend.Sampled st) ->
      Some (int_of_float (Float.round st.Bor_exec.Sampled.sp_cycles_estimate))
    | Ok _ | Error _ -> None)

let create ?(vectors = 4) ?(vector_seed = 7) ?(max_steps = 200_000)
    ?(max_cycles = 2_000_000) ?(oracle = Detailed) target =
  let vectors = max 1 vectors in
  let data_len = Bytes.length target.Program.data in
  let vecs = make_vectors ~count:vectors ~seed:vector_seed ~data_len in
  let expected =
    Array.map (run_vector ~max_steps ~data_len target) vecs
  in
  let missing = ref (-1) in
  Array.iteri
    (fun i s -> if s = None && !missing < 0 then missing := i)
    expected;
  if !missing >= 0 then
    Error
      (Printf.sprintf
         "target does not halt cleanly on test vector %d (budget %d steps)"
         !missing max_steps)
  else
    match oracle_cycles ~max_cycles oracle target with
    | None -> Error "target failed under the cost oracle"
    | Some cycles ->
      Ok
        {
          c_vectors = vecs;
          c_expected = Array.map Option.get expected;
          c_cycles = cycles;
          c_len = Array.length target.Program.text;
          c_data_len = data_len;
          c_max_steps = max_steps;
          c_max_cycles = max_cycles;
          c_oracle = oracle;
        }

let target_cycles t = t.c_cycles
let target_len t = t.c_len
let vector_count t = Array.length t.c_vectors

type eval = {
  ev_mismatches : int;
  ev_cycles : int;
  ev_cost : int;
  ev_oracle : bool;
}

let evaluate t prog =
  let mism = ref 0 in
  Array.iteri
    (fun i vec ->
      match
        run_vector ~max_steps:t.c_max_steps ~data_len:t.c_data_len prog vec
      with
      | None -> mism := !mism + unit_cap
      | Some got -> mism := !mism + units t.c_expected.(i) got)
    t.c_vectors;
  let len = Array.length prog.Program.text in
  if !mism = 0 then
    match oracle_cycles ~max_cycles:t.c_max_cycles t.c_oracle prog with
    | Some cycles ->
      { ev_mismatches = 0; ev_cycles = cycles; ev_cost = cycles;
        ev_oracle = true }
    | None ->
      (* Halts functionally but blows the oracle budget (the pipeline's
         branch-on-random stream found a divergent path): never accept. *)
      { ev_mismatches = 0; ev_cycles = infinite_cost;
        ev_cost = infinite_cost; ev_oracle = true }
  else begin
    let proxy = max 0 (t.c_cycles + (4 * (len - t.c_len))) in
    { ev_mismatches = !mism; ev_cycles = proxy;
      ev_cost = (!mism * 1000) + proxy; ev_oracle = false }
  end

let accept rng ~temperature ~current ~proposed =
  if proposed <= current then true
  else if temperature <= 0. then false
  else
    Prng.float rng
    < exp (-.float_of_int (proposed - current) /. temperature)
