(** Metropolis–Hastings search over BRISC sequences — the
    superoptimizer proper ([docs/OPT.md]).

    The search runs [chains] independent MCMC chains for [rounds]
    synchronization rounds of [iters] proposals each. Every round, all
    chains restart from the global best-so-far (synchronization on the
    best), each with a fresh seed drawn from the master PRNG {e before}
    the chains run; chains are pure functions of their seed, so the
    result is byte-identical at every [domains] setting — parallelism
    ([Bor_serve.Pool]) only changes wall-clock. Proposals come from
    {!Bor_gen.Gen.apply_move}, costs from {!Cost}, and the best-so-far
    only ever moves to {e equivalent} candidates (zero filter
    mismatches, oracle-measured).

    A winning candidate is only reported [verified] after passing two
    independent checks the search itself never used: equivalence on a
    {e fresh} vector set (different [vector_seed]) and the six-way
    differential ({!Bor_gen.Diff.run}). *)

type params = {
  p_seed : int;
  p_rounds : int;  (** synchronization rounds *)
  p_iters : int;  (** proposals per chain per round *)
  p_chains : int;  (** independent chains (not tied to [p_domains]) *)
  p_domains : int;  (** worker domains; affects wall-clock only *)
  p_rates : Bor_gen.Gen.rates;
  p_temperature : float;
  p_vectors : int;
  p_vector_seed : int;
  p_max_steps : int;
  p_max_cycles : int;
  p_oracle : Cost.oracle;
}

val default_params : params
(** seed 1, 8 rounds x 300 iters x 4 chains, 1 domain, default move
    rates, temperature 50, 4 vectors (seed 7), detailed oracle. *)

type counters = {
  n_proposals : int;  (** applicable proposals evaluated *)
  n_inapplicable : int;  (** moves that returned no neighbour *)
  n_acceptances : int;
  n_filter_rejects : int;  (** proposals with filter mismatches *)
  n_oracle_evals : int;  (** oracle (pipeline/sampled) runs paid for *)
}

type t = {
  r_target : Bor_isa.Program.t;
  r_best : Bor_isa.Program.t;
  r_target_cost : int;  (** the target's own oracle cycles *)
  r_best_cost : int;
  r_improved : bool;  (** [r_best_cost < r_target_cost] *)
  r_verified : bool;
      (** improved {e and} fresh-vector equivalent {e and} six-way
          differential [Pass] *)
  r_note : string;  (** why verification failed; [""] when verified *)
  r_counters : counters;
  r_trajectory : (int * int) list;
      (** (round, best cost) after each synchronization round *)
}

val run :
  ?progress:(round:int -> best:int -> unit) ->
  params ->
  Bor_isa.Program.t ->
  (t, string) result
(** Search for a cheaper equivalent of one target. [Error] when the
    target itself fails its vectors or the oracle. Registers the
    [opt.*] telemetry family (docs/TELEMETRY.md) in the calling
    domain's registry; worker-domain simulator instruments are
    deliberately dropped so the registry is identical at every domain
    count. Never raises. *)

val report_json : t -> Bor_telemetry.Json.t
(** Machine-readable rewrite record (schema [bor-opt-rewrite-v1]):
    costs, lengths, counters, trajectory and both programs as assembly
    text. Integers and strings only — digest-safe. *)
