module Prng = Bor_util.Prng
module Program = Bor_isa.Program
module Gen = Bor_gen.Gen
module Diff = Bor_gen.Diff
module Corpus = Bor_gen.Corpus
module Pool = Bor_serve.Pool
module Telemetry = Bor_telemetry.Telemetry
module Json = Bor_telemetry.Json

type params = {
  p_seed : int;
  p_rounds : int;
  p_iters : int;
  p_chains : int;
  p_domains : int;
  p_rates : Gen.rates;
  p_temperature : float;
  p_vectors : int;
  p_vector_seed : int;
  p_max_steps : int;
  p_max_cycles : int;
  p_oracle : Cost.oracle;
}

let default_params =
  {
    p_seed = 1;
    p_rounds = 8;
    p_iters = 300;
    p_chains = 4;
    p_domains = 1;
    p_rates = Gen.default_rates;
    p_temperature = 50.;
    p_vectors = 4;
    p_vector_seed = 7;
    p_max_steps = 200_000;
    p_max_cycles = 2_000_000;
    p_oracle = Cost.Detailed;
  }

type counters = {
  n_proposals : int;
  n_inapplicable : int;
  n_acceptances : int;
  n_filter_rejects : int;
  n_oracle_evals : int;
}

let zero_counters =
  {
    n_proposals = 0;
    n_inapplicable = 0;
    n_acceptances = 0;
    n_filter_rejects = 0;
    n_oracle_evals = 0;
  }

let add_counters a b =
  {
    n_proposals = a.n_proposals + b.n_proposals;
    n_inapplicable = a.n_inapplicable + b.n_inapplicable;
    n_acceptances = a.n_acceptances + b.n_acceptances;
    n_filter_rejects = a.n_filter_rejects + b.n_filter_rejects;
    n_oracle_evals = a.n_oracle_evals + b.n_oracle_evals;
  }

type t = {
  r_target : Program.t;
  r_best : Program.t;
  r_target_cost : int;
  r_best_cost : int;
  r_improved : bool;
  r_verified : bool;
  r_note : string;
  r_counters : counters;
  r_trajectory : (int * int) list;
}

(* One chain: a pure function of (evaluator, params, seed, start).
   The current point may wander through non-equivalent programs (the
   mismatch proxy gives MH a gradient there), but the chain's best only
   moves to equivalent, oracle-measured candidates — that is what a
   round's synchronization (and ultimately the report) picks from. *)
let run_chain eval params ~seed ~start ~start_cost =
  let rng = Prng.create ~seed in
  let cur = ref start and cur_cost = ref start_cost in
  let best = ref None and best_cost = ref start_cost in
  let proposals = ref 0
  and inapplicable = ref 0
  and acceptances = ref 0
  and filter_rejects = ref 0
  and oracle_evals = ref 0 in
  for _ = 1 to params.p_iters do
    let m = Gen.pick_move rng params.p_rates in
    match Gen.apply_move rng m !cur with
    | None -> incr inapplicable
    | Some cand ->
      incr proposals;
      let e = Cost.evaluate eval cand in
      if e.Cost.ev_oracle then incr oracle_evals;
      if e.Cost.ev_mismatches > 0 then incr filter_rejects;
      if
        Cost.accept rng ~temperature:params.p_temperature ~current:!cur_cost
          ~proposed:e.Cost.ev_cost
      then begin
        incr acceptances;
        cur := cand;
        cur_cost := e.Cost.ev_cost;
        if e.Cost.ev_mismatches = 0 && e.Cost.ev_cost < !best_cost then begin
          best := Some cand;
          best_cost := e.Cost.ev_cost
        end
      end
  done;
  ( !best,
    !best_cost,
    {
      n_proposals = !proposals;
      n_inapplicable = !inapplicable;
      n_acceptances = !acceptances;
      n_filter_rejects = !filter_rejects;
      n_oracle_evals = !oracle_evals;
    } )

let verify params target best =
  (* Fresh vectors the search never saw: a different vector seed builds
     a disjoint input set, so a candidate overfit to the search vectors
     fails here. The set is several times larger than the search's —
     functional runs are cheap, and every extra vector shrinks the
     chance that a target whose behaviour depends on rarely-exercised
     input patterns slips through (verification is testing-based, as
     in STOKE; docs/OPT.md spells out the regime). *)
  match
    Cost.create ~vectors:((3 * params.p_vectors) + 6)
      ~vector_seed:(params.p_vector_seed + 7919)
      ~max_steps:params.p_max_steps ~max_cycles:params.p_max_cycles
      ~oracle:params.p_oracle target
  with
  | Error e -> (false, "fresh-vector evaluator: " ^ e)
  | Ok fresh -> (
    let e = Cost.evaluate fresh best in
    if e.Cost.ev_mismatches > 0 then
      ( false,
        Printf.sprintf "fresh-vector mismatch (%d units)"
          e.Cost.ev_mismatches )
    else
      match
        Diff.run ~max_steps:params.p_max_steps
          ~max_cycles:(max params.p_max_cycles 20_000_000)
          best
      with
      | Diff.Pass -> (true, "")
      | Diff.Fail f ->
        (false, Printf.sprintf "differential %s: %s" f.Diff.stage f.Diff.reason)
      | Diff.Budget b -> (false, "differential budget: " ^ b))

let run ?progress params target =
  match
    Cost.create ~vectors:params.p_vectors ~vector_seed:params.p_vector_seed
      ~max_steps:params.p_max_steps ~max_cycles:params.p_max_cycles
      ~oracle:params.p_oracle target
  with
  | Error e -> Error e
  | Ok eval ->
    (* The opt.* family registers in the calling domain only; chains
       report plain integers back, so the registry contents are
       identical at every domain count. *)
    let sc = Telemetry.scope "opt" in
    let c_prop =
      Telemetry.counter sc ~unit_:"proposals"
        ~doc:"mutator proposals evaluated" "proposals"
    in
    let c_inap =
      Telemetry.counter sc ~unit_:"proposals"
        ~doc:"moves with no applicable neighbour" "inapplicable"
    in
    let c_acc =
      Telemetry.counter sc ~unit_:"proposals" ~doc:"Metropolis acceptances"
        "acceptances"
    in
    let c_filt =
      Telemetry.counter sc ~unit_:"proposals"
        ~doc:"proposals rejected by the functional filter" "filter_rejects"
    in
    let c_orac =
      Telemetry.counter sc ~unit_:"runs"
        ~doc:"cost-oracle (pipeline/sampled) evaluations" "oracle_evals"
    in
    let c_rounds =
      Telemetry.counter sc ~unit_:"rounds" ~doc:"synchronization rounds"
        "rounds"
    in
    let c_verified =
      Telemetry.counter sc ~unit_:"rewrites"
        ~doc:"rewrites that survived fresh-vector + differential checks"
        "verified_rewrites"
    in
    let h_best =
      Telemetry.histogram sc ~unit_:"cost"
        ~doc:"best cost observed after each synchronization round"
        "best_cost"
    in
    let target_cost = Cost.target_cycles eval in
    let master = Prng.create ~seed:params.p_seed in
    let best = ref target and best_cost = ref target_cost in
    let totals = ref zero_counters in
    let trajectory = ref [] in
    for round = 1 to params.p_rounds do
      (* Chain seeds are drawn before any chain runs, so the seed
         stream — and therefore every chain — is independent of how
         the chains are scheduled across domains. *)
      let seeds =
        Array.init params.p_chains (fun _ -> Prng.next master)
      in
      let results =
        Pool.map ~domains:params.p_domains
          (fun seed ->
            run_chain eval params ~seed ~start:!best ~start_cost:!best_cost)
          seeds
      in
      (* Strict < in submission order: ties go to the earliest chain,
         making the fold independent of completion order. *)
      Array.iter
        (fun (b, c, k) ->
          totals := add_counters !totals k;
          match b with
          | Some p when c < !best_cost ->
            best := p;
            best_cost := c
          | _ -> ())
        results;
      Telemetry.incr c_rounds;
      Telemetry.observe h_best !best_cost;
      trajectory := (round, !best_cost) :: !trajectory;
      match progress with
      | Some f -> f ~round ~best:!best_cost
      | None -> ()
    done;
    let t = !totals in
    Telemetry.add c_prop t.n_proposals;
    Telemetry.add c_inap t.n_inapplicable;
    Telemetry.add c_acc t.n_acceptances;
    Telemetry.add c_filt t.n_filter_rejects;
    Telemetry.add c_orac t.n_oracle_evals;
    let improved = !best_cost < target_cost in
    let verified, note =
      if improved then verify params target !best else (false, "no rewrite")
    in
    if verified then Telemetry.incr c_verified;
    Ok
      {
        r_target = target;
        r_best = !best;
        r_target_cost = target_cost;
        r_best_cost = !best_cost;
        r_improved = improved;
        r_verified = verified;
        r_note = note;
        r_counters = t;
        r_trajectory = List.rev !trajectory;
      }

let report_json r =
  let counters k =
    Json.Obj
      [
        ("proposals", Json.Int k.n_proposals);
        ("inapplicable", Json.Int k.n_inapplicable);
        ("acceptances", Json.Int k.n_acceptances);
        ("filter_rejects", Json.Int k.n_filter_rejects);
        ("oracle_evals", Json.Int k.n_oracle_evals);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "bor-opt-rewrite-v1");
      ("target_len", Json.Int (Array.length r.r_target.Program.text));
      ("best_len", Json.Int (Array.length r.r_best.Program.text));
      ("target_cost", Json.Int r.r_target_cost);
      ("best_cost", Json.Int r.r_best_cost);
      ("improved", Json.Bool r.r_improved);
      ("verified", Json.Bool r.r_verified);
      ("note", Json.String r.r_note);
      ("counters", counters r.r_counters);
      ( "trajectory",
        Json.List
          (List.map
             (fun (round, cost) -> Json.List [ Json.Int round; Json.Int cost ])
             r.r_trajectory) );
      ("target_asm", Json.String (Corpus.to_asm r.r_target));
      ( "best_asm",
        Json.String
          (if r.r_verified then Corpus.to_asm r.r_best
           else Corpus.to_asm r.r_target) );
    ]
