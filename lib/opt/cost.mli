(** Cost model for the stochastic superoptimizer ([bor opt]):

    {v cost = mismatches x 1000 + pipeline cycles v}

    The correctness term comes from a fast equivalence {e filter} — the
    functional simulator run over a fixed, seeded set of test-input
    vectors, comparing the complete final architectural state (all 32
    registers and the whole data segment) against the target's. Vector
    0 is always the clean machine state the timing oracle itself uses,
    so a candidate that passes the filter is guaranteed to halt on the
    state the oracle will run it from. The performance term comes from
    the cost {e oracle} — the detailed pipeline (or, with [Sampled],
    SMARTS-style sampled simulation) via {!Bor_exec.Backend} — and is
    only paid for candidates that pass the filter; filtered-out
    candidates get a length-based cycles proxy so Metropolis–Hastings
    still sees a gradient through non-equivalent regions.

    Everything here is a pure function of the evaluator, the candidate
    program and the PRNG passed to {!accept}: same seeds, same costs,
    same accept/reject decisions — on any domain. *)

type oracle =
  | Detailed  (** full-detail pipeline cycles *)
  | Sampled of Bor_uarch.Sampling_plan.t
      (** rounded [sp_cycles_estimate] from sampled simulation *)
(** Either way the oracle charges {e whole-program} cycles:
    region-of-interest markers in the measured candidate are
    neutralized to [Nop] first, so a search can never lower its cost
    by shrinking the measured region instead of the program. *)

type t
(** An evaluator: the target program, its test-input vectors, the
    expected final state per vector, and the target's own oracle
    cycles. *)

val create :
  ?vectors:int ->
  ?vector_seed:int ->
  ?max_steps:int ->
  ?max_cycles:int ->
  ?oracle:oracle ->
  Bor_isa.Program.t ->
  (t, string) result
(** Build an evaluator for one target. [vectors] (default 4, minimum 1)
    is the total vector count including the clean vector 0; the others
    randomize every register above [gp] and the whole data segment from
    a PRNG seeded with [vector_seed] (default 7). [max_steps] (default
    200000) bounds each functional filter run; [max_cycles] (default
    2e6) bounds each oracle run. [Error] when the target itself fails
    any vector or the oracle — such a target cannot be optimized. *)

val target_cycles : t -> int
(** The target's own oracle cycles — also its cost (mismatches = 0). *)

val target_len : t -> int
val vector_count : t -> int

val infinite_cost : int
(** Cost assigned when the oracle itself fails on a filter-passing
    candidate (budget blowout under the oracle's branch-on-random
    stream); large enough that such a candidate is never accepted. *)

type eval = {
  ev_mismatches : int;
      (** summed state-difference units over all vectors (registers +
          data bytes that differ, capped at 64 per vector; a vector the
          candidate faults or times out on counts the full cap) *)
  ev_cycles : int;
      (** oracle cycles when [ev_mismatches = 0]; otherwise the proxy
          [target_cycles + 4 x (len - target_len)], clamped at 0 *)
  ev_cost : int;  (** [ev_mismatches x 1000 + ev_cycles] *)
  ev_oracle : bool;  (** whether an oracle run was paid for *)
}

val evaluate : t -> Bor_isa.Program.t -> eval
(** Cost of one candidate against this evaluator's target. Never
    raises; simulator faults, sanitizer violations and budget blowouts
    surface as mismatch units or {!infinite_cost}. *)

val accept :
  Bor_util.Prng.t -> temperature:float -> current:int -> proposed:int -> bool
(** One Metropolis–Hastings decision. [proposed <= current] is accepted
    without consuming any randomness; otherwise, with [temperature <=
    0] the move is rejected (again consuming nothing), and with
    positive temperature exactly one float is drawn and the move is
    accepted iff [Prng.float rng < exp (-(proposed - current) /
    temperature)]. The draw discipline is part of the contract —
    [test/test_opt.ml] pins it. *)
