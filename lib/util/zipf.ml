type t = { cdf : float array; pmf : float array }

let create ~n ~alpha =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if alpha < 0. then invalid_arg "Zipf.create: alpha must be >= 0";
  let pmf = Array.init n (fun k -> 1. /. (Float.of_int (k + 1) ** alpha)) in
  let total = Array.fold_left ( +. ) 0. pmf in
  Array.iteri (fun k w -> pmf.(k) <- w /. total) pmf;
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun k p ->
      acc := !acc +. p;
      cdf.(k) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.;
  { cdf; pmf }

let n t = Array.length t.cdf
let probability t k = t.pmf.(k)

let sample t rng =
  let u = Prng.float rng in
  (* Smallest index whose CDF value exceeds [u]. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) > u then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length t.cdf - 1)
