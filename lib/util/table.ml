let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || String.contains "+-.%xe" c)
       s

let render ~headers rows =
  List.iter
    (fun r ->
      if List.length r <> List.length headers then
        invalid_arg "Table.render: row arity mismatch")
    rows;
  let all = headers :: rows in
  let ncols = List.length headers in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let numeric c =
    rows <> [] && List.for_all (fun row -> looks_numeric (List.nth row c)) rows
  in
  let numerics = List.init ncols numeric in
  let pad w right s =
    let fill = String.make (w - String.length s) ' ' in
    if right then fill ^ s else s ^ fill
  in
  let line cells =
    let fields =
      List.mapi
        (fun c s -> pad (List.nth widths c) (c > 0 && List.nth numerics c) s)
        cells
    in
    String.concat "  " fields ^ "\n"
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths) ^ "\n"
  in
  String.concat "" (line headers :: rule :: List.map line rows)

let print ~headers rows = print_string (render ~headers rows)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv ~headers rows =
  let line cells = String.concat "," (List.map csv_escape cells) ^ "\n" in
  String.concat "" (List.map line (headers :: rows))

let pct r = Printf.sprintf "%.2f%%" (100. *. r)
let f2 v = Printf.sprintf "%.2f" v
