type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty"
  | xs ->
    let n = List.length xs in
    let fn = Float.of_int n in
    let mean = List.fold_left ( +. ) 0. xs /. fn in
    let sq_dev acc x = acc +. ((x -. mean) ** 2.) in
    let var = if n < 2 then 0. else List.fold_left sq_dev 0. xs /. (fn -. 1.) in
    {
      n;
      mean;
      stddev = sqrt var;
      min = List.fold_left Float.min Float.infinity xs;
      max = List.fold_left Float.max Float.neg_infinity xs;
    }

let mean xs = (summarize xs).mean
let stddev xs = (summarize xs).stddev
let ci95_halfwidth s = 1.96 *. s.stddev /. sqrt (Float.of_int s.n)

let overlaps a b =
  let lo x = x.mean -. ci95_halfwidth x and hi x = x.mean +. ci95_halfwidth x in
  lo a <= hi b && lo b <= hi a

let chi_square ~expected ~observed =
  if Array.length expected <> Array.length observed then
    invalid_arg "Stats.chi_square: length mismatch";
  let acc = ref 0. in
  Array.iteri
    (fun i e ->
      if e > 0. then acc := !acc +. (((observed.(i) -. e) ** 2.) /. e))
    expected;
  !acc

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. Float.of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean

  let stddev t =
    if t.n < 2 then 0. else sqrt (t.m2 /. Float.of_int (t.n - 1))
end
