(* SplitMix64 (Steele, Lea & Flood 2014): tiny state, good statistical
   quality, and cheap splitting -- ideal for reproducible workloads. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next64 t }
let next t = Int64.to_int (next64 t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = max_int - (max_int mod bound) in
  let rec go () =
    let v = next t in
    if v < limit then v mod bound else go ()
  in
  go ()

let float t = Float.of_int (next t) /. Float.of_int max_int
let bool t = next t land 1 = 1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
