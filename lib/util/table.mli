(** Plain-text table rendering for the benchmark harness, so each
    reproduced figure prints as aligned rows comparable to the paper's
    series. *)

val render : headers:string list -> string list list -> string
(** [render ~headers rows] lays the table out with column-wise alignment
    (numbers right-aligned, text left-aligned) and a rule under the
    header. All rows must have the same arity as [headers]. *)

val print : headers:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val csv : headers:string list -> string list list -> string
(** The same data as comma-separated values, for post-processing. *)

val pct : float -> string
(** Format a ratio as a percentage with two decimals, e.g. [0.0064] is
    ["0.64%"]. *)

val f2 : float -> string
(** Two-decimal fixed-point float. *)
