(** Zipf-distributed sampling over item ranks [0 .. n-1].

    Method-invocation frequencies in real programs are heavy-tailed; the
    DaCapo-like synthetic workloads draw method ids from this
    distribution (rank 0 is the hottest method). *)

type t

val create : n:int -> alpha:float -> t
(** [create ~n ~alpha] precomputes the CDF of [P(k) ∝ 1/(k+1)^alpha] over
    [n] ranks. [n] must be positive and [alpha] non-negative ([alpha = 0]
    is the uniform distribution). *)

val n : t -> int

val probability : t -> int -> float
(** [probability t k] is the exact probability of rank [k]. *)

val sample : t -> Prng.t -> int
(** Draw a rank via binary search on the CDF; O(log n). *)
