(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Used exclusively for {e workload generation and test-case generation}.
    The branch-on-random instruction itself never uses this module: its
    randomness comes from {!Bor_lfsr.Lfsr}, as in the paper's hardware
    proposal. Keeping the two sources separate ensures experiments measure
    the LFSR's quality, not the host PRNG's. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator whose stream is a pure function of
    [seed]. *)

val copy : t -> t
(** Independent copy at the current position. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator, for decorrelated sub-streams. *)

val next : t -> int
(** Next raw 62-bit non-negative value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
