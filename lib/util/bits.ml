let mask w =
  if w < 0 || w > 62 then invalid_arg "Bits.mask"
  else if w = 0 then 0
  else (1 lsl w) - 1

let extract v ~pos ~len = (v lsr pos) land mask len

let insert v ~pos ~len ~field =
  let m = mask len in
  (v land lnot (m lsl pos)) lor ((field land m) lsl pos)

let bit v i = (v lsr i) land 1 = 1

let sign_extend v ~width =
  let v = v land mask width in
  if bit v (width - 1) then v - (1 lsl width) else v

(* The 32-bit cases are the per-instruction hot path of both
   simulators (every register write re-wraps): direct shift/mask
   forms, small enough to inline, rather than the generic
   [sign_extend]/[mask] (identical results on 63-bit ints). *)
let[@inline] wrap32 v = (v lsl 31) asr 31
let[@inline] to_u32 v = v land 0xFFFF_FFFF

let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 v

let parity v = popcount v land 1
let is_power_of_two v = v > 0 && v land (v - 1) = 0

let log2_exact v =
  if not (is_power_of_two v) then None
  else
    let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
    Some (go 0 v)

let fits_signed v ~width =
  let half = 1 lsl (width - 1) in
  v >= -half && v < half
