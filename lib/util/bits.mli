(** Bit-twiddling helpers shared by the LFSR, the instruction encoder and
    the micro-architectural structures.

    All values are plain OCaml [int]s treated as unsigned bit vectors of at
    most 62 bits unless a function says otherwise. *)

val mask : int -> int
(** [mask w] is a value with the low [w] bits set. [w] must be in
    [0, 62]. *)

val extract : int -> pos:int -> len:int -> int
(** [extract v ~pos ~len] is the [len]-bit field of [v] starting at bit
    [pos] (bit 0 is the least significant). *)

val insert : int -> pos:int -> len:int -> field:int -> int
(** [insert v ~pos ~len ~field] overwrites the [len]-bit field of [v] at
    [pos] with the low [len] bits of [field]. *)

val bit : int -> int -> bool
(** [bit v i] is the [i]-th bit of [v]. *)

val sign_extend : int -> width:int -> int
(** [sign_extend v ~width] reinterprets the low [width] bits of [v] as a
    two's-complement number. *)

val wrap32 : int -> int
(** [wrap32 v] reduces [v] to a signed 32-bit value (the semantics of all
    BRISC arithmetic). *)

val to_u32 : int -> int
(** [to_u32 v] is the unsigned reinterpretation of the low 32 bits. *)

val popcount : int -> int
(** Number of set bits. *)

val parity : int -> int
(** [parity v] is [popcount v mod 2]. *)

val is_power_of_two : int -> bool
(** [is_power_of_two v] holds when [v] is a positive power of two. *)

val log2_exact : int -> int option
(** [log2_exact v] is [Some k] when [v = 2{^k}], [None] otherwise. *)

val fits_signed : int -> width:int -> bool
(** [fits_signed v ~width] holds when [v] is representable as a signed
    [width]-bit immediate. *)
