(** Descriptive statistics used by the accuracy experiments and the
    LFSR quality tests. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val mean : float list -> float
val stddev : float list -> float

val ci95_halfwidth : summary -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean ([1.96 * stddev / sqrt n]). *)

val overlaps : summary -> summary -> bool
(** [overlaps a b] holds when the 95% confidence intervals of the two
    means intersect; the paper's "variation below the level of
    significance" criterion for the sensitivity analysis. *)

val chi_square : expected:float array -> observed:float array -> float
(** Pearson chi-squared statistic; bins with [expected = 0] are skipped. *)

(** Streaming mean/variance (Welford's algorithm), for accumulating
    per-cycle statistics without storing samples. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end
