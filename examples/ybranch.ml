(* Y-branch-style dependence auditing with branch-on-random (paper §7,
   after Bridges et al.): to decide whether a sequential loop is worth
   speculatively parallelising, sample a small fraction of iterations
   into an out-of-line audit that tests for cross-iteration dependences
   — instead of paying the test on every iteration.

   The loop computes a[i] = g(a[idx[i]]); an iteration depends on its
   predecessor exactly when idx[i] == i - 1. A 1/32 branch-on-random
   diverts iterations to the audit block, which classifies the sampled
   iteration. The estimate is compared against the exact dependence
   fraction computed in OCaml.

     dune exec examples/ybranch.exe *)

let n = 60_000

let source =
  Printf.sprintf
    {|
main:   li   s0, 0          ; i
        li   s1, %d         ; n
        la   s2, idx
        la   s3, a
        li   s5, 0          ; audited iterations
        li   s6, 0          ; audited with a dependence
loop:   slli t0, s0, 2
        add  t1, s2, t0     ; &idx[i]
        lw   t2, 0(t1)      ; idx[i]
        brr  1/32, audit
back:   slli t3, t2, 2
        add  t3, s3, t3
        lw   t4, 0(t3)      ; a[idx[i]]
        slli t5, t4, 1
        xor  t5, t5, s0     ; g(...)
        add  t6, s3, t0
        sw   t5, 0(t6)      ; a[i] = g(a[idx[i]])
        addi s0, s0, 1
        bne  s0, s1, loop
        mv   a0, s6
        mv   a1, s5
        halt

; out-of-line audit: does this iteration read the previous one's write?
audit:  addi s5, s5, 1
        addi t7, s0, -1
        bne  t2, t7, no_dep
        addi s6, s6, 1
no_dep: brra back

        .data
idx:    .space %d
a:      .space %d
|}
    n (4 * n) (4 * n)

let () =
  let program = Bor_isa.Asm.assemble_exn source in
  (* Build the index array: ~12%% of iterations read a[i-1] (a true
     cross-iteration dependence); the rest read far behind. *)
  let rng = Bor_util.Prng.create ~seed:2024 in
  let idx_addr = Option.get (Bor_isa.Program.find_symbol program "idx") in
  let base = idx_addr - program.data_base in
  let dependent = ref 0 in
  for i = 0 to n - 1 do
    let target =
      if i > 0 && Bor_util.Prng.float rng < 0.12 then begin
        incr dependent;
        i - 1
      end
      else if i = 0 then 0
      else Bor_util.Prng.int rng (max 1 (i / 2))
    in
    Bytes.set_int32_le program.data (base + (4 * i)) (Int32.of_int target)
  done;
  let exact = Float.of_int !dependent /. Float.of_int n in

  (* Functional run for the estimate. *)
  let m = Bor_sim.Machine.create program in
  (match Bor_sim.Machine.run m with
  | Ok _ -> ()
  | Error e -> failwith e);
  let audited_dep = Bor_sim.Machine.reg m (Bor_isa.Reg.a 0) in
  let audited = Bor_sim.Machine.reg m (Bor_isa.Reg.a 1) in
  let estimate = Float.of_int audited_dep /. Float.of_int (max 1 audited) in
  Printf.printf
    "audited %d of %d iterations (%.1f%%); %d carried a dependence\n"
    audited n
    (100. *. Float.of_int audited /. Float.of_int n)
    audited_dep;
  Printf.printf "estimated dependence fraction: %.2f%% (exact: %.2f%%)\n"
    (100. *. estimate) (100. *. exact);

  (* Cost of the audit framework, on the timing simulator. *)
  let t = Bor_uarch.Pipeline.create program in
  (match Bor_uarch.Pipeline.run t with
  | Ok st ->
    Printf.printf
      "timing: %d cycles for %d iterations (%.2f cycles/iter) with the \
       audit sampled at 1/32\n"
      st.cycles n
      (Float.of_int st.cycles /. Float.of_int n)
  | Error e -> failwith e);
  if estimate < 0.2 then
    print_endline
      "verdict: low dependence density - a speculative parallelisation \
       would mostly succeed"
  else
    print_endline
      "verdict: dependence-heavy - speculation would squash too often"
