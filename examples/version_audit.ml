(* Online performance auditing via branch-on-random (paper §7, after
   Lau et al.): route a small random fraction of executions to an
   alternative implementation of the same function and compare observed
   costs, without a counter in the hot path.

   Here, two functionally equivalent population-count routines compete:
   a loop version and a bit-trick version. A 1/16 branch-on-random
   diverts calls to the experimental version; per-version cycle costs
   are estimated from separately timed runs and per-version call counts
   from the audit run itself.

     dune exec examples/version_audit.exe *)

let program ~audit =
  Printf.sprintf
    {|
main:   li   s0, 30000      ; calls
        li   s1, 0xBEEF     ; evolving input
        li   s5, 0          ; checksum of results
        li   s6, 0          ; experimental-version calls
loop:   mv   a0, s1
        %s
done:   add  s5, s5, a0
        slli t0, s1, 1
        xor  s1, s1, t0
        addi s1, s1, 7
        addi s0, s0, -1
        bne  s0, zero, loop
        mv   a0, s5
        halt

; champion: loop popcount
champion:
        li   t1, 0          ; count
        li   t2, 32
cloop:  andi t3, a0, 1
        add  t1, t1, t3
        srli a0, a0, 1
        addi t2, t2, -1
        bne  t2, zero, cloop
        mv   a0, t1
        %s

; challenger: parallel-bits popcount
challenger:
        li   t4, 0x55555555
        srli t1, a0, 1
        and  t1, t1, t4
        sub  a0, a0, t1
        li   t4, 0x33333333
        and  t1, a0, t4
        srli a0, a0, 2
        and  a0, a0, t4
        add  a0, t1, a0
        srli t1, a0, 4
        add  a0, a0, t1
        li   t4, 0x0F0F0F0F
        and  a0, a0, t4
        li   t4, 0x01010101
        mul  a0, a0, t4
        srli a0, a0, 24
        addi s6, s6, 1
        %s
|}
    (if audit then "brr  1/16, try_challenger\n        jal  champion"
     else "jal  champion")
    (if audit then "ret" else "ret")
    (if audit then "brra done" else "ret")
  ^ (if audit then
       {|
try_challenger:
        jal  challenger
        brra done
|}
     else "")

let run source =
  let p = Bor_isa.Asm.assemble_exn source in
  let t = Bor_uarch.Pipeline.create p in
  match Bor_uarch.Pipeline.run t with
  | Error e -> failwith e
  | Ok st -> (t, st)

let () =
  let t, st = run (program ~audit:true) in
  let oracle = Bor_uarch.Pipeline.oracle t in
  let checksum = Bor_sim.Machine.reg oracle (Bor_isa.Reg.a 0) in
  let challenger_calls = Bor_sim.Machine.reg oracle (Bor_isa.Reg.s 6) in
  Printf.printf
    "audit run: %d cycles; %d of 30000 calls (%.2f%%) diverted to the \
     challenger\nchecksum %d\n\n"
    st.cycles challenger_calls
    (100. *. Float.of_int challenger_calls /. 30000.)
    checksum;
  (* Validate equivalence and compare pure costs with dedicated runs. *)
  let _, base = run (program ~audit:false) in
  Printf.printf "champion-only run: %d cycles (%.2f IPC)\n" base.cycles
    (Bor_uarch.Pipeline.ipc base);
  let per_call_champion = Float.of_int base.cycles /. 30000. in
  (* Estimate challenger per-call cost from the audit run's deltas. *)
  let audited_per_call = Float.of_int st.cycles /. 30000. in
  Printf.printf "champion per call: %.1f cycles\n" per_call_champion;
  Printf.printf
    "audited mix per call: %.1f cycles -> challenger is %s\n"
    audited_per_call
    (if audited_per_call < per_call_champion then
       "faster: promote it and keep auditing at a trickle"
     else "not faster on this input mix");
  Printf.printf
    "\n(the audit branch costs one brr per call; a counter-based router \
     would\nadd a load, compare, branch and store to every call)\n"
