(* Cooperative-scheduler yields via branch-on-random (paper §7).

   CPython releases its global interpreter lock after a fixed number of
   bytecodes, paying a counter decrement+test on every dispatch. A
   branch-on-random with the matching frequency replaces that counter
   with a single instruction whose yields are pseudo-random but arrive
   at the same average period.

   Both schedulers are written in BRISC assembly around the same
   "interpreter" loop, and compared on the timing simulator.

     dune exec examples/gil_scheduler.exe *)

(* Independent work: interpreter dispatch loops are typically front-end
   bound, which is exactly where the counter's extra instructions
   hurt. *)
let interpreter_body =
  {|
        ; one "bytecode": independent work in the dispatch loop
        addi t1, t1, 1
        xor  t2, t2, s3
        add  t3, t3, s4
        slli t4, t1, 1
|}

let counter_version =
  Printf.sprintf
    {|
main:   li   s1, 200000    ; bytecodes to run
        li   s3, 9173
        li   s4, 31
        li   s5, 99        ; gil release counter
        li   s6, 0         ; yields
loop:   %s
        addi s5, s5, -1    ; check-interval counter, every bytecode
        bne  s5, zero, next
        li   s5, 100
        jal  yield
next:   addi s1, s1, -1
        bne  s1, zero, loop
        mv   a0, s6
        halt
yield:  addi s6, s6, 1     ; "release and reacquire the lock"
        nop
        nop
        ret
|}
    interpreter_body

let brr_version =
  Printf.sprintf
    {|
main:   li   s1, 200000
        li   s3, 9173
        li   s4, 31
        li   s6, 0
loop:   %s
        brr  1/128, do_yield  ; yield with the matching average period
next:   addi s1, s1, -1
        bne  s1, zero, loop
        mv   a0, s6
        halt
do_yield:
        addi s6, s6, 1
        nop
        nop
        brra next
|}
    interpreter_body

let measure name source =
  let program = Bor_isa.Asm.assemble_exn source in
  let t = Bor_uarch.Pipeline.create program in
  match Bor_uarch.Pipeline.run t with
  | Error e -> failwith (name ^ ": " ^ e)
  | Ok st ->
    let yields =
      Bor_sim.Machine.reg (Bor_uarch.Pipeline.oracle t) (Bor_isa.Reg.a 0)
    in
    (name, st, yields)

let () =
  let counter = measure "counter (every 100)" counter_version in
  let brr = measure "branch-on-random 1/128" brr_version in
  let _, cst, _ = counter in
  let _, bst, _ = brr in
  Bor_util.Table.print
    ~headers:[ "scheduler"; "cycles"; "instructions"; "IPC"; "yields" ]
    (List.map
       (fun (name, (st : Bor_uarch.Pipeline.stats), yields) ->
         [
           name;
           string_of_int st.cycles;
           string_of_int st.instructions;
           Bor_util.Table.f2 (Bor_uarch.Pipeline.ipc st);
           string_of_int yields;
         ])
       [ counter; brr ]);
  Printf.printf
    "\nthe brr scheduler retires %d fewer instructions (%.1f%% fewer \
     cycles)\nfor a statistically equivalent yield cadence\n"
    (cst.instructions - bst.instructions)
    (100.
    *. Float.of_int (cst.cycles - bst.cycles)
    /. Float.of_int cst.cycles)
