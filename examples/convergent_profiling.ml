(* Convergent profiling (paper §7): because every branch-on-random
   instruction encodes its own frequency, a JIT can re-encode the field
   as the profile stabilises — high rate while learning, trickle once
   converged, snap back up when behaviour drifts.

   This example drives the annealer over a program that changes phase
   midway, and prints the adaptation history.

     dune exec examples/convergent_profiling.exe *)

let () =
  let c =
    Bor_sampling.Convergent.create
      ~engine:(Bor_core.Engine.create ~seed:0xFEED ())
      ~window:256 ~threshold:0.02 ()
  in
  (* Phase 1: a stable mix over sites 0-3 (site 0 hottest). *)
  let rng = Bor_util.Prng.create ~seed:11 in
  let phase1 = Bor_util.Zipf.create ~n:4 ~alpha:1.2 in
  for _ = 1 to 600_000 do
    ignore (Bor_sampling.Convergent.visit c (Bor_util.Zipf.sample phase1 rng))
  done;
  let mid_freq = Bor_sampling.Convergent.frequency c in
  let mid_visits = Bor_sampling.Convergent.visits c in
  (* Phase 2: behaviour changes -- new sites dominate. *)
  let phase2 = Bor_util.Zipf.create ~n:6 ~alpha:1.0 in
  for _ = 1 to 600_000 do
    ignore
      (Bor_sampling.Convergent.visit c
         (10 + Bor_util.Zipf.sample phase2 rng))
  done;
  let freq_str f = Format.asprintf "%a" Bor_core.Freq.pp f in
  Printf.printf "phase 1 ended with sampling rate %s after %d visits\n"
    (freq_str mid_freq) mid_visits;
  Printf.printf "final rate: %s; %d samples over %d visits (%.3f%%)\n\n"
    (freq_str (Bor_sampling.Convergent.frequency c))
    (Bor_sampling.Convergent.samples c)
    (Bor_sampling.Convergent.visits c)
    (100.
    *. Float.of_int (Bor_sampling.Convergent.samples c)
    /. Float.of_int (Bor_sampling.Convergent.visits c));
  Printf.printf "adaptation history (visit -> new frequency):\n";
  List.iter
    (fun (visit, freq) ->
      Printf.printf "  %8d -> %s%s\n" visit (freq_str freq)
        (if visit > 600_000 && visit < 650_000 then
           "   <- re-characterising after the phase change"
         else ""))
    (Bor_sampling.Convergent.adaptations c);
  (* The headline: most visits are never sampled, yet the profile tracks
     both phases. *)
  let profile = Bor_sampling.Convergent.profile c in
  Printf.printf "\ntop sites in the collected profile:\n";
  List.iter
    (fun (site, n) -> Printf.printf "  site %2d: %d samples\n" site n)
    (Bor_sampling.Profile.top profile 5)
