(* Quickstart: assemble a BRISC program that uses branch-on-random,
   run it on the functional simulator, then on the cycle-level timing
   simulator, and look at the LFSR machinery directly.

     dune exec examples/quickstart.exe *)

let source =
  {|
; Count how often a 1/16 branch-on-random fires over 10,000 visits.
main:   li   s0, 10000      ; visits remaining
        li   s1, 0          ; times taken
loop:   brr  1/16, hit      ; taken with probability 2^-4
back:   addi s0, s0, -1
        bne  s0, zero, loop
        mv   a0, s1
        halt
hit:    addi s1, s1, 1
        brra back           ; 100%-taken branch-on-random: BTB-neutral
|}

let () =
  (* 1. Assemble. *)
  let program = Bor_isa.Asm.assemble_exn source in
  Printf.printf "assembled %d instructions\n"
    (Bor_isa.Program.instr_count program);

  (* 2. Functional run: architectural behaviour only. *)
  let machine = Bor_sim.Machine.create program in
  (match Bor_sim.Machine.run machine with
  | Ok instructions -> Printf.printf "ran %d instructions\n" instructions
  | Error e -> failwith e);
  let taken = Bor_sim.Machine.reg machine (Bor_isa.Reg.a 0) in
  Printf.printf "branch fired %d / 10000 times (expect ~625 at 1/16)\n\n"
    taken;

  (* 3. Timing run: the paper's 4-wide out-of-order machine. The brr
     resolves in the decode stage; each take costs only a front-end
     flush. *)
  let pipeline = Bor_uarch.Pipeline.create program in
  (match Bor_uarch.Pipeline.run pipeline with
  | Ok st ->
    Printf.printf
      "timing: %d cycles, IPC %.2f, %d front-end flushes (one per taken \
       brr), %d back-end flushes\n\n"
      st.cycles
      (Bor_uarch.Pipeline.ipc st)
      st.frontend_flushes st.backend_flushes
  | Error e -> failwith e);

  (* 4. The hardware underneath: a 20-bit LFSR and the Figure 7 AND
     tree. *)
  let engine = Bor_core.Engine.create () in
  let freq = Bor_core.Freq.of_period 16 in
  Printf.printf "engine: p(%s) = %.4f; first outcomes:"
    (Format.asprintf "%a" Bor_core.Freq.pp freq)
    (Bor_core.Freq.probability freq);
  for _ = 1 to 20 do
    Printf.printf " %d" (Bool.to_int (Bor_core.Engine.decide engine freq))
  done;
  print_newline ();
  Printf.printf "hardware cost (single-issue): %d bits, %d gates\n"
    (Bor_core.Hwcost.state_bits Bor_core.Hwcost.single_issue)
    (Bor_core.Hwcost.gates Bor_core.Hwcost.single_issue)
