(* Method-invocation profiling end to end, the paper's Jikes use case:
   compile a minic program under several instrumentation frameworks,
   compare the sampled profiles against ground truth, and measure the
   run-time overhead of each framework on the timing simulator.

   This program also demonstrates the paper's resonance pathology in
   the wild: its hot loop performs a fixed cycle of sampling checks per
   iteration, and a counter interval that divides that cycle makes the
   deterministic counter sample the same (payload-free) check forever,
   collapsing the profile. An off-cycle interval recovers, and
   branch-on-random is immune at any interval -- "users do not even
   need to think about it in the first place".

     dune exec examples/profile_methods.exe *)

let source =
  {|
// A small "application": histogram words of a pseudo-random stream.
int table[512];
int rng;

int next_random() {
  rng = rng * 1103515245 + 12345;
  return (rng >> 16) & 32767;
}

int hash(int w) { return (w * 2654435761) & 511; }

int record(int w) {
  int h = hash(w);
  table[h] = table[h] + 1;
  return table[h];
}

int hot_path(int w) { return record(w & 1023); }
int cold_path(int w) { return record(w); }

int main() {
  int i;
  int acc = 0;
  rng = 7;
  for (i = 0; i < 40000; i = i + 1) {
    int w = next_random();
    if ((w & 7) == 0) acc = acc + cold_path(w);
    else acc = acc + hot_path(w);
  }
  return acc;
}
|}

let profile_with name framework =
  let cfg = Bor_minic.Driver.config framework in
  let compiled = Bor_minic.Driver.compile_exn ~cfg source in
  (* Ground truth: the functional simulator announces every site visit
     without perturbing the program. *)
  let machine = Bor_sim.Machine.create compiled.program in
  let full = Bor_sampling.Profile.create () in
  Bor_sim.Machine.on_site machine (fun id ->
      Bor_sampling.Profile.record full id);
  (match Bor_sim.Machine.run machine with
  | Ok _ -> ()
  | Error e -> failwith e);
  (* The instrumentation's own view: the __prof array it maintained. *)
  let sampled = Bor_sampling.Profile.create () in
  List.iter
    (fun (id, n) -> Bor_sampling.Profile.record_many sampled id n)
    (Bor_minic.Driver.read_profile compiled machine);
  let accuracy = Bor_sampling.Profile.accuracy ~full ~sampled in
  (* Overhead: cycles on the timing simulator vs the plain build. *)
  let cycles =
    let t = Bor_uarch.Pipeline.create compiled.program in
    match Bor_uarch.Pipeline.run t with
    | Ok st -> st.cycles
    | Error e -> failwith e
  in
  (name, compiled, full, accuracy, cycles)

let () =
  let interval = 64 in
  let plain =
    profile_with "none" Bor_minic.Instrument.No_instrumentation
  in
  let _, _, _, _, base_cycles = plain in
  let variants =
    [
      profile_with "full" Bor_minic.Instrument.Full;
      profile_with "counter (1/64)"
        Bor_minic.Instrument.(Sampled (Counter interval, Full_duplication));
      profile_with "counter (1/61)"
        Bor_minic.Instrument.(Sampled (Counter 61, Full_duplication));
      profile_with "brr (1/64)"
        Bor_minic.Instrument.(
          Sampled (Brr (Bor_core.Freq.of_period interval), Full_duplication));
    ]
  in
  Printf.printf "baseline: %d cycles\n\n" base_cycles;
  Bor_util.Table.print
    ~headers:[ "framework"; "samples"; "accuracy"; "overhead" ]
    (List.map
       (fun (name, (compiled : Bor_minic.Driver.compiled), _, accuracy, cycles)
       ->
         let samples =
           List.fold_left (fun a (_, c) -> a + c) 0
             (let m = Bor_sim.Machine.create compiled.program in
              ignore (Bor_sim.Machine.run m);
              Bor_minic.Driver.read_profile compiled m)
         in
         [
           name;
           string_of_int samples;
           Bor_util.Table.pct accuracy;
           Bor_util.Table.pct
             (Float.of_int (cycles - base_cycles)
             /. Float.of_int base_cycles);
         ])
       variants);
  Printf.printf
    "\nthe 1/64 counter resonates with this program's check cycle: nearly\n\
     every sample lands on a payload-free backedge check. 1/61 breaks the\n\
     resonance; branch-on-random never had it.\n";
  (* Show the hottest methods from the ground truth. *)
  let _, compiled, full, _, _ = List.nth variants 3 in
  Printf.printf "\nhottest methods (ground truth):\n";
  List.iter
    (fun (id, count) ->
      let info =
        List.find (fun (s : Bor_minic.Instrument.site_info) -> s.id = id)
          compiled.sites
      in
      Printf.printf "  %-14s %d invocations\n" info.in_func count)
    (Bor_sampling.Profile.top full 4)
