(* Adaptive re-encoding of branch-on-random frequencies at run time —
   the mechanism behind the paper's convergent profiling (§7): "because
   each branch-on-random instruction encodes its own frequency, it is
   possible to efficiently implement convergent profiling, by modifying
   the sampling frequency as information is collected."

   A JIT here is simulated by pausing the functional machine every
   200k instructions and patching the 4-bit frequency field of each
   site's brr: sites whose profile has enough samples are slowed down
   (halved rate), unknown sites keep sampling fast.

     dune exec examples/adaptive_jit.exe *)

let source = Bor_workload.Apps.source "lusearch"

let () =
  let cfg =
    Bor_minic.Driver.config
      Bor_minic.Instrument.(
        Sampled (Brr (Bor_core.Freq.of_field 0), No_duplication))
  in
  let compiled = Bor_minic.Driver.compile_exn ~cfg source in
  (* In the brr framework, each site's branch-on-random sits exactly at
     the site address. *)
  let site_pcs =
    List.filter_map
      (fun (addr, id) -> Some (id, addr))
      compiled.program.sites
  in
  let machine = Bor_sim.Machine.create compiled.program in
  let fields = Hashtbl.create 16 in
  List.iter
    (fun (s : Bor_minic.Instrument.site_info) ->
      Hashtbl.replace fields s.id 0)
    compiled.sites;
  let last_counts = Hashtbl.create 16 in
  let target = 256 (* samples at a rate before annealing *) in
  let retunes = ref 0 in
  let retune () =
    List.iter
      (fun (id, pc) ->
        let count =
          List.assoc id (Bor_minic.Driver.read_profile compiled machine)
        in
        let last =
          Option.value ~default:0 (Hashtbl.find_opt last_counts id)
        in
        if count - last >= target then begin
          let field = min 11 (Hashtbl.find fields id + 1) in
          Hashtbl.replace fields id field;
          Hashtbl.replace last_counts id count;
          Bor_sim.Machine.patch_brr_freq machine ~pc
            (Bor_core.Freq.of_field field);
          incr retunes
        end)
      site_pcs
  in
  (* Drive the machine in 200k-instruction slices, retuning between. *)
  let slices = ref 0 in
  while not (Bor_sim.Machine.halted machine) do
    let start = (Bor_sim.Machine.stats machine).instructions in
    while
      (not (Bor_sim.Machine.halted machine))
      && (Bor_sim.Machine.stats machine).instructions - start < 200_000
    do
      Bor_sim.Machine.step machine
    done;
    incr slices;
    retune ()
  done;
  let st = Bor_sim.Machine.stats machine in
  Printf.printf
    "ran %d instructions in %d slices; %d frequency re-encodings\n"
    st.instructions !slices !retunes;
  Printf.printf "final per-site rates and samples:\n";
  List.iter
    (fun (s : Bor_minic.Instrument.site_info) ->
      let samples =
        List.assoc s.id (Bor_minic.Driver.read_profile compiled machine)
      in
      Printf.printf "  %-14s field %2d (1/%-5d) %7d samples\n" s.in_func
        (Hashtbl.find fields s.id)
        (Bor_core.Freq.period (Bor_core.Freq.of_field (Hashtbl.find fields s.id)))
        samples)
    compiled.sites;
  (* Compare total sampling work against never annealing (all sites at
     the initial 50%). *)
  let flat = Bor_sim.Machine.create compiled.program in
  (match Bor_sim.Machine.run flat with Ok _ -> () | Error e -> failwith e);
  let total m c =
    List.fold_left (fun a (_, n) -> a + n) 0 (Bor_minic.Driver.read_profile c m)
  in
  Printf.printf
    "\nadaptive total samples: %d; flat 50%% sampling would take: %d\n"
    (total machine compiled) (total flat compiled);
  Printf.printf
    "(every hot site was still characterised with hundreds of samples)\n"
